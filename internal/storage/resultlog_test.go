package storage

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"picl/internal/undolog"
)

func digestOf(s string) [32]byte { return sha256.Sum256([]byte(s)) }

func TestResultsRoundTripMem(t *testing.T) {
	r, err := OpenResults(NewMem(undolog.Super{RegionBytes: undolog.DefaultRegionBytes}))
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string]string{
		"a": "tiny",
		"b": string(bytes.Repeat([]byte("x"), undolog.BlockBytes)),   // spans 2 blocks
		"c": string(bytes.Repeat([]byte("y"), 3*undolog.BlockBytes)), // spans 4
		"d": "",
	}
	for k, v := range payloads {
		if err := r.Put(digestOf(k), []byte(v)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	for k, v := range payloads {
		got, ok := r.Get(digestOf(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%s): ok=%v len=%d want len=%d", k, ok, len(got), len(v))
		}
	}
	if _, ok := r.Get(digestOf("missing")); ok {
		t.Fatal("Get of unknown digest reported ok")
	}
	if r.Len() != len(payloads) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(payloads))
	}
}

func TestResultsReopenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	f, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenResults(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := r.Put(digestOf(fmt.Sprint(i)), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OpenResults(f2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 10 {
		t.Fatalf("reopened Len = %d, want 10", r2.Len())
	}
	for i := 0; i < 10; i++ {
		got, ok := r2.Get(digestOf(fmt.Sprint(i)))
		if !ok || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("reopened Get(%d) = %q, %v", i, got, ok)
		}
	}
	// First-seen order survives the round trip.
	order := r2.Digests()
	if len(order) != 10 || order[0] != digestOf("0") || order[9] != digestOf("9") {
		t.Fatalf("digest order not preserved: %d entries", len(order))
	}
}

// TestResultsTornTailRepair truncates the file at every byte offset
// inside the final record and verifies open drops exactly that record,
// repairs the region, and appends cleanly afterwards.
func TestResultsTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	build := func(path string) int64 {
		f, err := OpenFile(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenResults(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Put(digestOf("keep"), []byte("the survivor")); err != nil {
			t.Fatal(err)
		}
		if err := r.Put(digestOf("torn"), bytes.Repeat([]byte("z"), undolog.BlockBytes+100)); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}

	probe := filepath.Join(dir, "probe.log")
	full := build(probe)
	firstRecEnd := int64(undolog.SuperBytes + undolog.BlockBytes) // record 1 = 1 block
	// Sample cut points across the second record, including mid-header
	// and exactly at a block boundary.
	for cut := firstRecEnd; cut < full; cut += 97 {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.log", cut))
		build(path)
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		f, err := OpenFile(path, 0)
		if err != nil {
			t.Fatalf("cut %d: OpenFile: %v", cut, err)
		}
		r, err := OpenResults(f)
		if err != nil {
			t.Fatalf("cut %d: OpenResults: %v", cut, err)
		}
		if _, ok := r.Get(digestOf("keep")); !ok {
			t.Fatalf("cut %d: surviving record lost", cut)
		}
		if _, ok := r.Get(digestOf("torn")); ok {
			t.Fatalf("cut %d: torn record resurrected", cut)
		}
		// The repaired region accepts new appends at the clean boundary.
		if err := r.Put(digestOf("after"), []byte("post-repair")); err != nil {
			t.Fatalf("cut %d: Put after repair: %v", cut, err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		f2, err := OpenFile(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := OpenResults(f2)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := r2.Get(digestOf("after")); !ok || string(got) != "post-repair" {
			t.Fatalf("cut %d: post-repair record lost on reopen", cut)
		}
		r2.Close()
	}
}

// TestResultsCorruptTailCRC flips a bit in the final record; open must
// drop it (CRC) and keep the prefix.
func TestResultsCorruptTailCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.log")
	f, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenResults(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(digestOf("first"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(digestOf("second"), []byte("to be rotted")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[undolog.SuperBytes+undolog.BlockBytes+resultHeaderBytes+3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OpenResults(f2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Get(digestOf("first")); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := r2.Get(digestOf("second")); ok {
		t.Fatal("bit-rotted record served")
	}
}

// TestResultsRefreshCrossProcess models a second process appending to
// the shared region: a reader's Refresh picks the new record up without
// reopening, and never truncates a foreign in-flight tail.
func TestResultsRefreshCrossProcess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.log")
	wf, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := OpenResults(wf)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Put(digestOf("boot"), []byte("v0")); err != nil {
		t.Fatal(err)
	}

	rf, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := OpenResults(rf)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	if reader.Len() != 1 {
		t.Fatalf("reader booted with %d records, want 1", reader.Len())
	}

	// "Other process" appends two records.
	if err := writer.Put(digestOf("late-1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := writer.Put(digestOf("late-2"), bytes.Repeat([]byte("w"), 3000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := reader.Get(digestOf("late-1")); ok {
		t.Fatal("reader saw a foreign append without Refresh")
	}
	if err := reader.Refresh(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"boot", "late-1", "late-2"} {
		if _, ok := reader.Get(digestOf(k)); !ok {
			t.Fatalf("after Refresh, %q missing", k)
		}
	}

	// A foreign torn tail (append in flight) must not break Refresh or
	// get truncated away by the reader.
	if err := wf.TearTail(bytes.Repeat([]byte{0xab}, undolog.BlockBytes), 700); err != nil {
		t.Fatal(err)
	}
	if err := reader.Refresh(); err != nil {
		t.Fatalf("Refresh over foreign torn tail: %v", err)
	}
	if reader.Len() != 3 {
		t.Fatalf("torn tail changed reader index: %d records", reader.Len())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= undolog.SuperBytes {
		t.Fatal("reader truncated the shared file")
	}
	writer.Close()
}

// TestResultsPutBounds rejects oversized payloads before touching the
// backend.
func TestResultsPutBounds(t *testing.T) {
	r, err := OpenResults(NewMem(undolog.Super{RegionBytes: undolog.DefaultRegionBytes}))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(digestOf("big"), make([]byte, MaxResultBytes+1)); err == nil {
		t.Fatal("oversized Put accepted")
	}
	if r.Len() != 0 {
		t.Fatal("failed Put left index entries")
	}
}

// TestResultsDuplicatePut: a re-appended digest serves the newest
// payload, in process and across a reopen.
func TestResultsDuplicatePut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.log")
	f, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenResults(f)
	if err != nil {
		t.Fatal(err)
	}
	d := digestOf("cell")
	if err := r.Put(d, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(d, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Get(d); string(got) != "v2" {
		t.Fatalf("in-process Get = %q, want v2", got)
	}
	if r.Len() != 1 {
		t.Fatalf("duplicate digest double-counted: Len=%d", r.Len())
	}
	r.Close()
	f2, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OpenResults(f2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got, _ := r2.Get(d); string(got) != "v2" {
		t.Fatalf("reopened Get = %q, want v2 (last write wins)", got)
	}
}
