// Package perf holds the substrate microbenchmark bodies shared by the
// `go test -bench` harness (bench_test.go wrappers) and cmd/picl-perf,
// the standalone runner that records them into the committed baseline
// report (BENCH_PR9.json) and gates CI on regressions. Keeping one copy
// of each body guarantees the number a developer sees from `go test
// -bench` is the number the comparator gates on.
package perf

import (
	"runtime"
	"testing"

	"picl/internal/bloom"
	"picl/internal/cache"
	"picl/internal/core"
	"picl/internal/exp"
	"picl/internal/mem"
	"picl/internal/nvm"
	"picl/internal/sim"
	"picl/internal/trace"
	"picl/internal/undolog"
)

// calibSink keeps Calibrate's spin from being optimized away.
var calibSink uint64

// Calibrate spins a fixed pure-ALU workload (64 xorshift rounds per
// op). Its ns/op tracks the host's effective CPU speed — frequency
// scaling, steal time — so cmd/picl-perf can gate the other benchmarks
// on calibration-relative time and stay stable across host-load drift.
func Calibrate(b *testing.B) {
	x := uint64(88172645463325252)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	calibSink = x
}

// CacheLookupHit measures the tag-array hit path (scan + LRU touch).
func CacheLookupHit(b *testing.B) {
	c := cache.New(cache.Config{Name: "b", Size: 2 << 20, Ways: 8, Latency: 1})
	for i := 0; i < 1024; i++ {
		c.Place(mem.LineAddr(i), mem.Word(i), 0, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(mem.LineAddr(i&1023), true)
	}
}

// CacheInsertEvict measures Place on a full cache: the tag scan, the
// LRU victim scan over the stamp plane, and the victim hand-off through
// the scratch slot.
func CacheInsertEvict(b *testing.B) {
	c := cache.New(cache.Config{Name: "b", Size: 64 << 10, Ways: 8, Latency: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Place(mem.LineAddr(i), mem.Word(i), 0, true)
	}
}

// HierarchyStore measures a store walking the full L1/L2/LLC install and
// eviction-drain machinery under the PiCL scheme.
func HierarchyStore(b *testing.B) {
	ctl := nvm.NewController(nvm.DefaultConfig())
	scheme, _ := sim.MakeScheme("picl", ctl, false, core.DefaultConfig(), exp.Scaled().Params())
	h := cache.NewHierarchy(exp.Scaled().Hierarchy(1), scheme, scheme)
	scheme.Attach(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Store(uint64(i), 0, mem.LineAddr(i&4095), mem.Word(i))
	}
}

// NVMSubmit measures controller op submission and bank scheduling.
func NVMSubmit(b *testing.B) {
	c := nvm.NewController(nvm.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Submit(uint64(i)*1000, nvm.OpWriteback, 64)
	}
}

// BloomInsertProbe measures the ACS bloom filter hot ops.
func BloomInsertProbe(b *testing.B) {
	f := bloom.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(mem.LineAddr(i))
		f.MayContain(mem.LineAddr(i + 1))
		if i&31 == 31 {
			f.Clear()
		}
	}
}

// UndoLogAppendGC measures undo-log block append plus periodic GC.
func UndoLogAppendGC(b *testing.B) {
	l := undolog.NewLog(0)
	entries := make([]undolog.Entry, undolog.EntriesPerBlock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range entries {
			entries[j] = undolog.Entry{Line: mem.LineAddr(j), ValidFrom: mem.EpochID(i), ValidTill: mem.EpochID(i + 1)}
		}
		l.AppendBlock(entries)
		if i&63 == 63 {
			l.GC(mem.EpochID(i - 4))
		}
	}
}

// Image snapshot benchmark geometry: a footprint of snapshotFootprint
// live lines with snapshotWrites line writes per epoch. The COW path
// should cost O(writes) per epoch; Clone costs O(footprint).
const (
	snapshotFootprint = 1 << 16
	snapshotWrites    = 1 << 10
)

func populatedImage() *mem.Image {
	im := mem.NewImage()
	for i := 0; i < snapshotFootprint; i++ {
		im.Write(mem.LineAddr(i), mem.Word(i+1))
	}
	return im
}

// ImageSnapshotCOW measures one epoch of history recording: write
// snapshotWrites lines, then Mark seals the delta. This is the per-commit
// snapshot cost in functional+KeepGolden runs.
func ImageSnapshotCOW(b *testing.B) {
	im := populatedImage()
	im.EnableHistory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1023 == 1023 {
			// Bound history growth; the rebuild is excluded from timing.
			b.StopTimer()
			im = populatedImage()
			im.EnableHistory()
			b.StartTimer()
		}
		base := mem.LineAddr((i % 37) * snapshotWrites)
		for j := 0; j < snapshotWrites; j++ {
			im.Write(base+mem.LineAddr(j), mem.Word(i*snapshotWrites+j+1))
		}
		im.Mark()
	}
}

// ImageSnapshotClone measures the replaced strategy on the same epoch
// shape: write snapshotWrites lines, then deep-copy the whole image.
// Kept as the contrast baseline for ImageSnapshotCOW.
func ImageSnapshotClone(b *testing.B) {
	im := populatedImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := mem.LineAddr((i % 37) * snapshotWrites)
		for j := 0; j < snapshotWrites; j++ {
			im.Write(base+mem.LineAddr(j), mem.Word(i*snapshotWrites+j+1))
		}
		if im.Clone().Len() == 0 {
			b.Fatal("clone lost the image")
		}
	}
}

// SimThroughputPiCL measures end-to-end simulator speed (simulated
// instructions per host second) on a single-core PiCL run of the scaled
// gcc profile — the headline number the committed baseline gates on.
func SimThroughputPiCL(b *testing.B) {
	g := trace.NewSynthetic(trace.MustProfile("gcc").Scale(1.0/64), 0, 1)
	h := exp.Scaled().Hierarchy(1)
	m, err := sim.New(sim.Config{
		Scheme: "picl", Workloads: []trace.Generator{g},
		Hierarchy: &h, EpochInstr: 469_000, InstrPerCore: ^uint64(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	target := uint64(b.N)
	m.RunUntil(func(_ uint64, instr uint64) bool { return instr >= target })
	b.ReportMetric(float64(b.N), "instr")
}

// SimThroughputPiCLSharded measures end-to-end speed of the sharded
// engine: a 4-core scaled gcc mix decomposed into address-partitioned
// lanes running on up to NumCPU goroutines (see DESIGN.md §8.7). On a
// multicore host this is the lane-parallelism × SoA end-to-end number;
// on a single-CPU host it degenerates to one lane's serial cost and
// only documents the engine's overhead. b.N counts total simulated
// instructions across all lanes.
func SimThroughputPiCLSharded(b *testing.B) {
	const cores = 4
	gens := make([]trace.Generator, cores)
	for i := range gens {
		gens[i] = trace.NewSynthetic(trace.MustProfile("gcc").Scale(1.0/64),
			mem.LineAddr(uint64(i+1)<<34), uint64(13+i))
	}
	h := exp.Scaled().Hierarchy(cores)
	shards := runtime.NumCPU()
	if shards > cores {
		shards = cores
	}
	cfg := sim.Config{
		Scheme: "picl", Workloads: gens,
		Hierarchy: &h, EpochInstr: 469_000,
		InstrPerCore: (uint64(b.N) + cores - 1) / cores,
		Shards:       shards,
	}
	b.ResetTimer()
	res, err := sim.Execute(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Instructions), "instr")
}
