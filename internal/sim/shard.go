// Sharded single-run parallelism. The evaluation's multicore runs are
// multiprogrammed: every core executes its own benchmark over a
// disjoint address region (internal/exp places them 1 TiB apart), so
// the system state partitions cleanly by address — each core's lines,
// its slice of the LLC, its slice of the NVM image, and its epoch log
// traffic never touch another core's. The sharded engine makes that
// partition explicit: an N-core run becomes N single-core lanes, each a
// complete Machine over the core's workload, a 1/N LLC partition, and
// its own NVM channel. Lanes execute on a worker pool in lockstep
// epoch windows (a barrier at every epoch bound keeps their skew
// bounded to one epoch) and their results are merged deterministically
// — sums for counters, max for the clock, a (Time, lane)-ordered k-way
// merge for event streams.
//
// Because the lane decomposition depends only on the configuration,
// the merged result is byte-identical for every shard count and any
// host: Config.Shards only sets the worker-goroutine width. A
// single-core sharded run is bit-equivalent to the legacy serial
// engine (one lane IS the legacy machine); a multicore sharded run is
// its own semantics — per-lane LLC partitions and NVM channels instead
// of shared contention — and is gated by its own golden digests.
package sim

import (
	"fmt"
	"sync"

	"picl/internal/cache"
	"picl/internal/obs"
	"picl/internal/stats"
	"picl/internal/trace"
)

// Sharded is a sharded simulation: one lane Machine per core, executed
// across a bounded worker pool in lockstep epoch windows.
type Sharded struct {
	cfg   Config
	lanes []*Machine
}

// Execute runs one configured simulation through the engine the config
// selects: the sharded lane engine when cfg.Shards > 0, else a single
// legacy Machine. This is the entry point the CLIs and the experiment
// runner share.
func Execute(cfg Config) (*Result, error) {
	if cfg.Shards > 0 {
		s, err := NewSharded(cfg)
		if err != nil {
			return nil, err
		}
		return s.Run(), nil
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}

// NewSharded builds the lane decomposition of cfg. It requires
// multiprogrammed workloads (per-core disjoint address regions — the
// only kind the harness generates); features whose state cannot be
// partitioned by address are rejected rather than silently degraded:
// functional golden tracking and crash injection need one coherent
// image, an external Tracer would observe lanes in scheduler order,
// and a multicore Timeline has no per-epoch total ordering across
// lanes. TraceCap stays available — each lane records its own ring and
// the streams k-way merge by (Time, lane) into Result.Events.
func NewSharded(cfg Config) (*Sharded, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("sim: no workloads")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Functional {
		return nil, fmt.Errorf("sim: sharded engine does not support functional mode (golden images cannot be partitioned); use Shards=0")
	}
	if cfg.Tracer != nil {
		return nil, fmt.Errorf("sim: sharded engine rejects an external Tracer (lane interleaving is scheduler-dependent); use TraceCap for a deterministic merged stream")
	}
	cores := len(cfg.Workloads)
	if cfg.Timeline && cores > 1 {
		return nil, fmt.Errorf("sim: sharded multicore runs cannot record a Timeline (no total per-epoch order across lanes)")
	}
	hcfg := cache.DefaultHierarchyConfig(cores)
	if cfg.Hierarchy != nil {
		hcfg = *cfg.Hierarchy
		hcfg.Cores = cores
	}
	laneLLC, err := partitionLLC(hcfg.LLC, cores)
	if err != nil {
		return nil, err
	}

	s := &Sharded{cfg: cfg}
	for c := 0; c < cores; c++ {
		lane := cfg
		lane.Workloads = []trace.Generator{cfg.Workloads[c]}
		lh := hcfg
		lh.Cores = 1
		lh.LLC = laneLLC
		lane.Hierarchy = &lh
		lane.Shards = 0
		m, err := New(lane)
		if err != nil {
			return nil, err
		}
		// Lane c runs as core 0 of its own machine; keep its OS
		// boundary-handler stores on core c's save-area lines.
		m.osCoreBase = c
		s.lanes = append(s.lanes, m)
	}
	return s, nil
}

// partitionLLC splits the shared LLC capacity into one per-lane
// partition, validating that the slice still has a power-of-two set
// count (the cache model's indexing requirement).
func partitionLLC(llc cache.Config, cores int) (cache.Config, error) {
	if llc.Size%cores != 0 {
		return llc, fmt.Errorf("sim: LLC size %d does not divide across %d lanes", llc.Size, cores)
	}
	llc.Size /= cores
	sets := llc.Size / (64 * llc.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		return llc, fmt.Errorf("sim: %d-lane LLC partition of %d B yields %d sets (need a power of two)", cores, llc.Size*cores, sets)
	}
	return llc, nil
}

// Lanes exposes the per-core lane machines (tests inspect them).
func (s *Sharded) Lanes() []*Machine { return s.lanes }

// Run executes every lane to its instruction budget and merges the
// results. Lanes are independent — the window barriers exist to bound
// skew (no lane runs ahead by more than one epoch), which keeps peak
// memory flat and failure diagnostics aligned; the barrier schedule
// cannot affect results. Worker count is min(Shards, lanes); lane
// results land in per-lane slots, so the pool's dispatch order is
// irrelevant to the merge.
func (s *Sharded) Run() *Result {
	workers := s.cfg.Shards
	if workers > len(s.lanes) {
		workers = len(s.lanes)
	}
	target := s.lanes[0].cfg.InstrPerCore
	window := s.lanes[0].cfg.EpochInstr
	results := make([]*Result, len(s.lanes))
	for bound := window; ; bound += window {
		if bound > target {
			bound = target
		}
		stopAt := bound
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = s.lanes[i].RunUntil(func(_, instr uint64) bool {
						return instr >= stopAt
					})
				}
			}()
		}
		for i := range s.lanes {
			idx <- i
		}
		close(idx)
		wg.Wait()
		if bound >= target {
			break
		}
	}
	return mergeResults(results)
}

// mergeResults folds the per-lane results into one Result: clocks take
// the max (lanes ran concurrently), counts sum, counter bags merge
// (commutative adds), and event streams k-way merge by (Time, lane).
// Every reduction is commutative or totally ordered, so the output is
// independent of lane completion order — this is the determinism the
// shard-invariance gate pins.
func mergeResults(rs []*Result) *Result {
	out := &Result{
		Scheme:   rs[0].Scheme,
		Cores:    len(rs),
		Counters: stats.NewCounters(),
	}
	for _, r := range rs {
		if r.Cycles > out.Cycles {
			out.Cycles = r.Cycles
		}
		out.Instructions += r.Instructions
		out.Commits += r.Commits
		out.ForcedCommit += r.ForcedCommit
		out.BoundaryStallCycles += r.BoundaryStallCycles
		out.NVM.Merge(r.NVM)
		out.Counters.Merge(r.Counters)
		out.LogPeakBytes += r.LogPeakBytes
		out.LogTotalBytes += r.LogTotalBytes
		out.EventsDropped += r.EventsDropped
	}
	if len(rs) == 1 {
		// One lane IS the legacy machine; pass its streams through so a
		// single-core sharded run is bit-equivalent to Shards=0.
		out.Timeline = rs[0].Timeline
		out.Events = rs[0].Events
		return out
	}
	out.Events = mergeEvents(rs)
	return out
}

// mergeEvents interleaves the per-lane event streams with a k-way
// pointer merge: at each step the lane whose head event has the lowest
// Time (ties to the lowest lane index) advances, so intra-lane emission
// order is preserved exactly. Lane streams are only near-sorted — the
// engine sometimes emits a completion before an earlier-timestamped
// submit, as in the legacy single-machine stream — so the merged
// stream inherits those local inversions; what matters is that the
// interleaving is a pure function of the lane streams, hence identical
// at every shard width.
func mergeEvents(rs []*Result) []obs.Event {
	total := 0
	for _, r := range rs {
		total += len(r.Events)
	}
	if total == 0 {
		return nil
	}
	out := make([]obs.Event, 0, total)
	heads := make([]int, len(rs))
	for len(out) < total {
		best := -1
		var bestTime uint64
		for lane, r := range rs {
			h := heads[lane]
			if h >= len(r.Events) {
				continue
			}
			if best < 0 || r.Events[h].Time < bestTime {
				best, bestTime = lane, r.Events[h].Time
			}
		}
		out = append(out, rs[best].Events[heads[best]])
		heads[best]++
	}
	return out
}

// Now returns the maximum lane clock (system time of the merged run).
func (s *Sharded) Now() uint64 {
	var now uint64
	for _, m := range s.lanes {
		if t := m.Now(); t > now {
			now = t
		}
	}
	return now
}
