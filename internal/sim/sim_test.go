package sim

import (
	"math/rand"
	"testing"

	"picl/internal/baselines"
	"picl/internal/cache"
	"picl/internal/core"
	"picl/internal/mem"
	"picl/internal/nvm"
	"picl/internal/trace"
)

func tinyConfig(scheme string, cores int, functional bool) Config {
	var gens []trace.Generator
	for i := 0; i < cores; i++ {
		gens = append(gens, trace.NewUniform(
			"u", mem.LineAddr(i)<<20, 2000, 0.3, 4, uint64(i)+1))
	}
	// A proportionally shrunken Table IV hierarchy so the 2000-line
	// (128 KiB) footprint produces realistic eviction traffic.
	h := cache.HierarchyConfig{
		Cores: cores,
		L1:    cache.Config{Name: "l1", Size: 1 << 10, Ways: 4, Latency: 1},
		L2:    cache.Config{Name: "l2", Size: 8 << 10, Ways: 8, Latency: 4},
		LLC:   cache.Config{Name: "llc", Size: cores * (32 << 10), Ways: 8, Latency: 30},
	}
	return Config{
		Scheme:       scheme,
		Workloads:    gens,
		Hierarchy:    &h,
		EpochInstr:   50_000,
		InstrPerCore: 200_000,
		Functional:   functional,
		KeepGolden:   functional,
	}
}

func TestRunCompletesBudget(t *testing.T) {
	for _, scheme := range SchemeNames() {
		m, err := New(tinyConfig(scheme, 1, false))
		if err != nil {
			t.Fatal(err)
		}
		r := m.Run()
		if r.Instructions < 200_000 {
			t.Fatalf("%s: ran %d instructions, want >= 200000", scheme, r.Instructions)
		}
		if r.Cycles == 0 {
			t.Fatalf("%s: zero cycles", scheme)
		}
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	cfg := tinyConfig("bogus", 1, false)
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	cfg.Workloads = nil
	cfg.Scheme = "picl"
	if _, err := New(cfg); err == nil {
		t.Fatal("empty workload list accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		m, err := New(tinyConfig("picl", 2, false))
		if err != nil {
			t.Fatal(err)
		}
		return m.Run()
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.NVM.Count != b.NVM.Count {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
}

func TestCommitCountsAtNominalRate(t *testing.T) {
	// PiCL commits exactly once per epoch interval (Fig. 11's point);
	// with 100k instructions and 20k epochs that is 5 commits.
	m, _ := New(tinyConfig("picl", 1, false))
	r := m.Run()
	if r.Commits != 4 {
		t.Fatalf("picl commits = %d, want 4", r.Commits)
	}
	// Ideal never commits.
	m2, _ := New(tinyConfig("ideal", 1, false))
	if r2 := m2.Run(); r2.Commits != 0 {
		t.Fatalf("ideal commits = %d, want 0", r2.Commits)
	}
}

func TestStopTheWorldSchemesStall(t *testing.T) {
	mIdeal, _ := New(tinyConfig("ideal", 1, false))
	rIdeal := mIdeal.Run()
	mFRM, _ := New(tinyConfig("frm", 1, false))
	rFRM := mFRM.Run()
	if rFRM.BoundaryStallCycles == 0 {
		t.Fatal("FRM reported no boundary stalls")
	}
	if rFRM.Cycles <= rIdeal.Cycles {
		t.Fatalf("FRM (%d cycles) not slower than ideal (%d)", rFRM.Cycles, rIdeal.Cycles)
	}
}

func TestPiCLOverheadIsLow(t *testing.T) {
	// The headline claim at miniature scale: PiCL within a few percent of
	// ideal while FRM pays a visible penalty.
	cycles := func(scheme string) uint64 {
		m, _ := New(tinyConfig(scheme, 1, false))
		return m.Run().Cycles
	}
	ideal := cycles("ideal")
	picl := cycles("picl")
	frm := cycles("frm")
	piclOv := float64(picl)/float64(ideal) - 1
	frmOv := float64(frm)/float64(ideal) - 1
	if piclOv > 0.10 {
		t.Fatalf("PiCL overhead %.3f exceeds 10%% at miniature scale", piclOv)
	}
	if frmOv < 2*piclOv {
		t.Fatalf("FRM overhead %.3f not clearly above PiCL %.3f", frmOv, piclOv)
	}
}

func TestEndToEndCrashRecoveryAllSchemes(t *testing.T) {
	for _, scheme := range SchemeNames() {
		if scheme == "ideal" {
			continue
		}
		t.Run(scheme, func(t *testing.T) {
			cfg := tinyConfig(scheme, 1, true)
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.Run()
			if _, err := m.CrashAndRecover(m.Now()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEndToEndCrashRecoveryMultiCore(t *testing.T) {
	cfg := tinyConfig("picl", 4, true)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	eid, err := m.CrashAndRecover(m.Now())
	if err != nil {
		t.Fatal(err)
	}
	if eid == 0 {
		t.Fatal("nothing persisted in a full multicore run")
	}
}

func TestRandomCrashPointsPiCL(t *testing.T) {
	// Crash at random instruction counts mid-run; recovery must always
	// land on a consistent epoch image.
	rnd := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		cfg := tinyConfig("picl", 2, true)
		cfg.PiCL = core.Config{ACSGap: rnd.Intn(4), BufferEntries: 8}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stopAt := uint64(rnd.Intn(150_000) + 20_000)
		m.RunUntil(func(_ uint64, instr uint64) bool { return instr >= stopAt })
		crash := m.Now()
		if d := m.Controller().Drain(); d > crash && rnd.Intn(2) == 0 {
			crash += uint64(rnd.Int63n(int64(d - crash + 1)))
		}
		if _, err := m.CrashAndRecover(crash); err != nil {
			t.Fatalf("trial %d (stop %d): %v", trial, stopAt, err)
		}
	}
}

func TestNormalizedIOPS(t *testing.T) {
	mi, _ := New(tinyConfig("ideal", 1, false))
	ri := mi.Run()
	base := ri.NVM.Ops(nvm.CatWriteback)
	if base == 0 {
		t.Fatal("ideal produced no write-backs")
	}
	mf, _ := New(tinyConfig("frm", 1, false))
	rf := mf.Run()
	if rf.NormalizedIOPS(nvm.CatRandom, base) <= 0.5 {
		t.Fatalf("FRM random IOPS ratio %.2f implausibly low", rf.NormalizedIOPS(nvm.CatRandom, base))
	}
	mp, _ := New(tinyConfig("picl", 1, false))
	rp := mp.Run()
	if rp.NormalizedIOPS(nvm.CatRandom, base) >= rf.NormalizedIOPS(nvm.CatRandom, base) {
		t.Fatal("PiCL random IOPS should be far below FRM")
	}
	if rp.NormalizedIOPS(nvm.CatSequential, base) == 0 {
		t.Fatal("PiCL produced no sequential log writes")
	}
	if r := (&Result{}).NormalizedIOPS(nvm.CatRandom, 0); r != 0 {
		t.Fatal("zero base must normalize to 0")
	}
}

func TestPiCLLogFootprintReported(t *testing.T) {
	m, _ := New(tinyConfig("picl", 1, false))
	r := m.Run()
	if r.LogTotalBytes == 0 || r.LogPeakBytes == 0 {
		t.Fatalf("log footprint not reported: %+v", r)
	}
}

func TestForcedCommitsReported(t *testing.T) {
	// A write-heavy footprint much larger than the journal table forces
	// early commits.
	gens := []trace.Generator{trace.NewUniform("w", 0, 60_000, 0.8, 1, 9)}
	m, _ := New(Config{
		Scheme: "journal", Workloads: gens,
		EpochInstr: 200_000, InstrPerCore: 400_000,
	})
	r := m.Run()
	if r.ForcedCommit == 0 {
		t.Fatal("journal reported no forced commits under table pressure")
	}
	if r.Commits <= 2 {
		t.Fatalf("journal commits = %d, want far more than nominal 2", r.Commits)
	}
}

func TestGoldenAccessors(t *testing.T) {
	m, _ := New(tinyConfig("picl", 1, true))
	m.Run()
	if _, ok := m.Golden(0); !ok {
		t.Fatal("golden epoch 0 missing")
	}
	if _, ok := m.Golden(10_000); ok {
		t.Fatal("absurd epoch reported present")
	}
	if m.Reference() == nil {
		t.Fatal("reference image missing in functional mode")
	}
	if _, err := (&Machine{cfg: Config{}}).CrashAndRecover(0); err == nil {
		t.Fatal("crash injection must require functional mode")
	}
}

func TestFunctionalRejectsReorderingControllers(t *testing.T) {
	cfg := tinyConfig("picl", 1, true)
	dev := nvm.DefaultConfig()
	dev.Banks = 8
	cfg.NVM = &dev
	if _, err := New(cfg); err == nil {
		t.Fatal("functional mode accepted a reordering controller")
	}
	// Timing-only mode accepts it.
	cfg2 := tinyConfig("picl", 1, false)
	cfg2.NVM = &dev
	if _, err := New(cfg2); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryUnderForcedCommits(t *testing.T) {
	// Regression for the straddling-eviction bug (found by picl-recover):
	// a dirty line evicted while its scheme's translation table is full
	// forces a commit — and the evicted line has already left the LLC, so
	// it must ride in that commit's flush set or the committed epoch
	// silently loses its newest value. Tiny tables make forced commits
	// constant; recovery must stay bit-exact for every redo scheme.
	for _, scheme := range []string{"journal", "shadow", "thynvm"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := tinyConfig(scheme, 1, true)
			cfg.Baseline = baselines.Params{
				TableEntries: 26, TableWays: 13,
				BlockEntries: 26, PageEntries: 26,
			}
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := m.Run()
			if r.ForcedCommit == 0 {
				t.Fatalf("no forced commits; regression scenario not exercised (commits=%d)", r.Commits)
			}
			if _, err := m.CrashAndRecover(m.Now()); err != nil {
				t.Fatal(err)
			}
			// And with an in-flight crash window.
			m2, _ := New(cfg)
			m2.RunUntil(func(_ uint64, instr uint64) bool { return instr >= 120_000 })
			crash := (m2.Now() + m2.Controller().Drain()) / 2
			if crash < m2.Now() {
				crash = m2.Now()
			}
			if _, err := m2.CrashAndRecover(crash); err != nil {
				t.Fatal(err)
			}
		})
	}
}
