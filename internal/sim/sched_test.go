package sim

import (
	"reflect"
	"testing"
)

// TestNowMatchesClockScan pins the O(1) maintained Now() to its
// specification: the maximum core clock. The stop callback polls after
// every access quantum, so the incremental maximum is checked at every
// point the scheduler can observe time.
func TestNowMatchesClockScan(t *testing.T) {
	m, err := New(tinyConfig("picl", 4, false))
	if err != nil {
		t.Fatal(err)
	}
	polls := 0
	m.RunUntil(func(now uint64, _ uint64) bool {
		max := uint64(0)
		for _, c := range m.cores {
			if c.clock > max {
				max = c.clock
			}
		}
		if now != max || m.Now() != max {
			t.Fatalf("Now()=%d, clock scan max=%d after %d polls", m.Now(), max, polls)
		}
		polls++
		return false
	})
	if polls == 0 {
		t.Fatal("stop callback never polled")
	}
}

// TestSchedQuantumInvariance runs the same configuration under quanta
// spanning one access to effectively unbounded and requires bit-identical
// Results. This is the contract SchedQuantum documents: the knob may
// change performance, never a single simulated cycle or counter.
func TestSchedQuantumInvariance(t *testing.T) {
	for _, scheme := range []string{"picl", "journal"} {
		ref := func() *Result {
			cfg := tinyConfig(scheme, 4, false)
			cfg.SchedQuantum = 1
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m.Run()
		}()
		for _, q := range []int{3, 64, 1 << 20} {
			cfg := tinyConfig(scheme, 4, false)
			cfg.SchedQuantum = q
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := m.Run()
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s: quantum %d diverges from quantum 1: cycles %d vs %d, NVM %+v vs %+v",
					scheme, q, ref.Cycles, got.Cycles, ref.NVM, got.NVM)
			}
		}
	}
}

// TestSampleEpochZeroAlloc asserts the warm sampling path allocates
// nothing: after the reservation, recording an epoch sample is an
// in-place append plus value copies.
func TestSampleEpochZeroAlloc(t *testing.T) {
	cfg := tinyConfig("picl", 1, false)
	cfg.Timeline = true
	cfg.InstrPerCore = cfg.EpochInstr * 1000 // roomy reservation
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg.EpochInstr * 3
	m.RunUntil(func(_ uint64, instr uint64) bool { return instr >= warm })
	if avg := testing.AllocsPerRun(100, func() { m.sampleEpoch(m.Now()) }); avg > 0 {
		t.Fatalf("sampleEpoch allocates %.1f times per call after warm-up", avg)
	}
}

// TestTimelinePreallocated documents the timeline reservation: the
// epoch-sample slice is sized up front from the instruction budget, so
// sampleEpoch never reallocates mid-run (append growth would show up
// here as a larger final capacity).
func TestTimelinePreallocated(t *testing.T) {
	cfg := tinyConfig("picl", 2, false)
	cfg.Timeline = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run()
	wantCap := int(cfg.InstrPerCore/cfg.EpochInstr) + 2
	if len(r.Timeline) == 0 {
		t.Fatal("timeline enabled but no epoch samples recorded")
	}
	if cap(r.Timeline) != wantCap {
		t.Fatalf("timeline capacity %d (len %d), want the preallocated %d — sampleEpoch reallocated",
			cap(r.Timeline), len(r.Timeline), wantCap)
	}
}
