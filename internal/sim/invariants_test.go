package sim

import (
	"testing"

	"picl/internal/cache"
	"picl/internal/core"
	"picl/internal/mem"
	"picl/internal/trace"
)

// TestEIDTagRangeInvariant checks the hardware-feasibility invariant from
// paper §IV-A: every live EID tag in the cache hierarchy stays within
// [PersistedEID, SystemEID], and that window stays narrower than the
// 4-bit tag space, so ResolveTag always reconstructs the right epoch.
func TestEIDTagRangeInvariant(t *testing.T) {
	for _, gap := range []int{0, 2, 3} {
		cfg := tinyConfig("picl", 2, false)
		cfg.PiCL = core.Config{ACSGap: gap}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checks := 0
		m.RunUntil(func(_ uint64, instr uint64) bool {
			if instr%25_000 != 0 {
				return false
			}
			checks++
			sys := m.Scheme().SystemEID()
			persisted := m.Scheme().PersistedEID()
			if sys-persisted >= mem.TagMask {
				t.Fatalf("gap=%d: live window %d..%d exceeds 4-bit tag space", gap, persisted, sys)
			}
			m.Hierarchy().LLC().Scan(func(ref cache.LineRef) bool {
				ln := ref.Snapshot()
				if ln.EID == mem.NoEpoch {
					return true
				}
				if ln.EID > sys {
					t.Fatalf("gap=%d: line %v tagged with future epoch %d (system %d)", gap, ln.Addr, ln.EID, sys)
				}
				if ln.Dirty || ln.PrivDirty {
					if ln.EID+mem.TagMask < sys {
						t.Fatalf("gap=%d: dirty line %v EID %d undecodable at system %d", gap, ln.Addr, ln.EID, sys)
					}
					if got := mem.ResolveTag(ln.EID.Tag(), sys); got != ln.EID {
						t.Fatalf("gap=%d: tag of %d resolves to %d at system %d", gap, ln.EID, got, sys)
					}
				}
				return true
			})
			return false
		})
		if checks == 0 {
			t.Fatal("invariant never checked")
		}
	}
}

// TestRecoveryIsIdempotent checks that running the recovery procedure
// twice (a crash during recovery, then recovering again) yields the same
// image: recovery only reads durable state and patches a copy.
func TestRecoveryIsIdempotent(t *testing.T) {
	cfg := tinyConfig("picl", 1, true)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	m.Scheme().CrashAt(m.Now())
	img1, eid1, err := m.Scheme().Recover()
	if err != nil {
		t.Fatal(err)
	}
	img2, eid2, err := m.Scheme().Recover()
	if err != nil {
		t.Fatal(err)
	}
	if eid1 != eid2 || !img1.Equal(img2) {
		t.Fatalf("recovery not idempotent: epochs %d/%d, equal=%v", eid1, eid2, img1.Equal(img2))
	}
}

// TestUndoLogStaysOrdered verifies the nondecreasing block-expiration
// invariant survives a realistic PiCL run with GC active.
func TestUndoLogStaysOrdered(t *testing.T) {
	cfg := tinyConfig("picl", 1, false)
	cfg.PiCL = core.Config{ACSGap: 1, BufferEntries: 4}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	p := m.Scheme().(*core.PiCL)
	if err := p.Log().CheckOrdered(); err != nil {
		t.Fatal(err)
	}
	if p.Log().Reclaimed() == 0 {
		t.Fatal("GC never ran during a full run")
	}
}

// TestMulticoreFairness checks no core is starved: with identical
// workloads per core, per-core completion times stay within 2x.
func TestMulticoreFairness(t *testing.T) {
	var gens []trace.Generator
	for i := 0; i < 4; i++ {
		gens = append(gens, trace.NewUniform("u", mem.LineAddr(i)<<24, 1500, 0.3, 4, 99))
	}
	cfg := tinyConfig("picl", 1, false)
	cfg.Workloads = gens
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run()
	perCore := float64(r.Instructions) / 4
	if perCore < float64(cfg.InstrPerCore) {
		t.Fatalf("cores starved: %.0f instructions per core, want >= %d", perCore, cfg.InstrPerCore)
	}
}

// TestSchemesDrainEventually ensures no scheme leaves the persisted
// horizon forever behind after the run ends and the queue drains.
func TestSchemesDrainEventually(t *testing.T) {
	for _, scheme := range SchemeNames() {
		if scheme == "ideal" {
			continue
		}
		m, err := New(tinyConfig(scheme, 1, false))
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		m.Scheme().Tick(m.Controller().Drain() + 1)
		sys := m.Scheme().SystemEID()
		persisted := m.Scheme().PersistedEID()
		maxLag := mem.EpochID(4) // PiCL's default ACS-gap + 1
		if persisted+maxLag < sys {
			t.Fatalf("%s: persisted %d lags system %d beyond the ACS gap after drain", scheme, persisted, sys)
		}
	}
}

// TestSharedMemoryCrashRecovery runs a true multi-threaded workload
// (cores contending on one shared region) under PiCL and verifies crash
// recovery stays bit-exact — the §IV-C claim that shared structures are
// protected by the system-wide epoch.
func TestSharedMemoryCrashRecovery(t *testing.T) {
	sg := trace.NewSharedGroup(1<<30, 200)
	var gens []trace.Generator
	for i := 0; i < 4; i++ {
		private := trace.NewUniform("p", mem.LineAddr(i)<<20, 800, 0.4, 3, uint64(i)+5)
		gens = append(gens, sg.Wrap(private, 0.3, uint64(i)*31+7))
	}
	cfg := tinyConfig("picl", 1, true)
	cfg.Workloads = gens
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if _, err := m.CrashAndRecover(m.Now()); err != nil {
		t.Fatal(err)
	}
	if err := m.Hierarchy().CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

// TestOSHandlerStoresHappen checks the §V-A epoch-boundary handler: each
// commit spills per-core architectural state with cacheable stores, which
// become cross-epoch stores (fresh undo entries) every single epoch.
func TestOSHandlerStoresHappen(t *testing.T) {
	cfg := tinyConfig("picl", 2, true)
	cfg.OSHandlerLines = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run()
	// The save area must hold state for both cores.
	for core := 0; core < 2; core++ {
		l := osSaveArea + mem.LineAddr(core*64)
		if m.Reference().Read(l) == 0 {
			t.Fatalf("core %d OS save area never written", core)
		}
	}
	if r.Commits == 0 {
		t.Fatal("no commits")
	}
	// Crash-recovery still exact with handler traffic in the mix.
	if _, err := m.CrashAndRecover(m.Now()); err != nil {
		t.Fatal(err)
	}
	// Disabled handler writes nothing.
	cfg2 := tinyConfig("picl", 1, true)
	cfg2.OSHandlerLines = -1
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	m2.Run()
	if m2.Reference().Read(osSaveArea) != 0 {
		t.Fatal("disabled OS handler still wrote")
	}
}

// TestTimelineSampling checks the per-epoch timeline: samples cover the
// run, and a stop-the-world scheme shows its boundary stalls in them.
func TestTimelineSampling(t *testing.T) {
	cfg := tinyConfig("frm", 1, false)
	cfg.Timeline = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run()
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	var stall, cyc uint64
	for _, e := range r.Timeline {
		stall += e.StallCycles
		cyc += e.Cycles
	}
	if stall == 0 {
		t.Fatal("frm timeline shows no boundary stalls")
	}
	if stall != r.BoundaryStallCycles {
		t.Fatalf("timeline stall %d != total %d", stall, r.BoundaryStallCycles)
	}
	if cyc > r.Cycles {
		t.Fatalf("timeline cycles %d exceed run %d", cyc, r.Cycles)
	}
	// Without the flag, no samples.
	m2, _ := New(tinyConfig("frm", 1, false))
	if got := m2.Run().Timeline; len(got) != 0 {
		t.Fatalf("timeline recorded without flag: %d", len(got))
	}
}
