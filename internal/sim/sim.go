// Package sim is the trace-driven multi-core simulation engine (the
// stand-in for the paper's Pin+PRIME methodology, §VI-A): in-order cores
// at CPI 1 for non-memory instructions, blocking loads, store-buffered
// stores, a shared cache hierarchy, an FCFS NVM controller, and
// epoch-boundary interrupts delivered to the active checkpointing scheme.
//
// In functional mode the engine additionally maintains a golden reference
// of end-of-epoch memory states and supports crash injection: the run is
// frozen at an arbitrary instant, the scheme recovers from its durable
// state, and the result is compared bit-exactly against the golden image
// of the epoch the scheme claims to have restored.
//
// # Concurrency contract
//
// A Machine owns every piece of mutable state it touches — its scheme,
// cache hierarchy, NVM controller, trace generators, and reference
// images are all constructed by New and never shared. One Machine is
// strictly single-threaded (deterministic replay is the point), but any
// number of independent Machines may run concurrently: the packages
// underneath (cache, nvm, core, baselines, trace, undolog) keep no
// package-level mutable state. internal/exp relies on this to sweep the
// evaluation matrix across a worker pool; the -race test in this package
// enforces it.
package sim

import (
	"fmt"

	"picl/internal/baselines"
	"picl/internal/cache"
	"picl/internal/checkpoint"
	"picl/internal/core"
	"picl/internal/mem"
	"picl/internal/nvm"
	"picl/internal/obs"
	"picl/internal/stats"
	"picl/internal/trace"
)

// SchemeNames lists every scheme the engine can instantiate, in the
// paper's presentation order.
func SchemeNames() []string {
	return []string{"ideal", "journal", "shadow", "frm", "thynvm", "picl"}
}

// MakeScheme instantiates a scheme by name over the given controller.
func MakeScheme(name string, ctl *nvm.Controller, functional bool, piclCfg core.Config, params baselines.Params) (checkpoint.Scheme, error) {
	switch name {
	case "ideal":
		return baselines.NewIdeal(ctl, functional), nil
	case "journal":
		return baselines.NewJournalWith(ctl, functional, params), nil
	case "shadow":
		return baselines.NewShadowWith(ctl, functional, params), nil
	case "frm":
		return baselines.NewFRM(ctl, functional), nil
	case "thynvm":
		return baselines.NewThyNVMWith(ctl, functional, params), nil
	case "picl":
		return core.New(piclCfg, ctl, functional), nil
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q", name)
	}
}

// Config describes one simulation run.
type Config struct {
	// Scheme is the checkpointing scheme name (see SchemeNames).
	Scheme string
	// PiCL carries PiCL-specific parameters when Scheme == "picl".
	PiCL core.Config
	// Baseline sizes the redo schemes' translation tables (zero value =
	// paper defaults).
	Baseline baselines.Params
	// Workloads holds one generator per core.
	Workloads []trace.Generator
	// Hierarchy defaults to the Table IV system for len(Workloads) cores.
	Hierarchy *cache.HierarchyConfig
	// NVM defaults to nvm.DefaultConfig.
	NVM *nvm.Config
	// EpochInstr is the checkpoint interval in instructions per core
	// (paper default: 30 M).
	EpochInstr uint64
	// InstrPerCore is the run length per core.
	InstrPerCore uint64
	// OSHandlerLines models the per-core epoch-boundary interrupt handler
	// (paper §V-A): at every commit the OS saves registers and arithmetic
	// state with cacheable stores to a fixed per-core area. Default 4
	// lines (256 B of architectural state); 0 disables.
	OSHandlerLines int
	// Timeline records per-epoch statistics (Result.Timeline) — useful
	// for visualizing the baselines' stop-the-world commit spikes against
	// PiCL's flat profile.
	Timeline bool
	// SchedQuantum caps how many consecutive accesses the scheduler may
	// run on the chosen lagging core before it re-derives the schedule
	// from scratch. Purely a performance/robustness knob: the scheduler
	// re-checks the exact selection invariant after every access, so any
	// quantum produces cycle-identical results. 0 means the default (64).
	SchedQuantum int
	// Shards, when positive, selects the sharded engine (see NewSharded):
	// the multiprogrammed run is decomposed into one lane per core and
	// the lanes execute on up to Shards worker goroutines in lockstep
	// epoch windows. The decomposition depends only on the configuration,
	// never on Shards, so results are byte-identical for every positive
	// value (and any host core count). Zero keeps the legacy serial
	// engine, whose multicore semantics (shared LLC and NVM channel)
	// differ from the lane decomposition — the two engines' results are
	// only interchangeable for single-core runs. Machines constructed
	// directly with New ignore this field; it is consumed by Execute and
	// NewSharded.
	Shards int
	// TraceCap, when positive, attaches a machine-owned obs.Ring of that
	// capacity to every engine layer (scheme, hierarchy, NVM controller)
	// and returns the recorded stream in Result.Events. Events carry
	// simulated time only, so the stream is byte-identical however many
	// machines run in parallel around this one.
	TraceCap int
	// TraceMask restricts ring recording to the given kinds (zero = all).
	// Long runs use it to keep low-volume kinds (epoch lifecycle) from
	// being overwritten by high-volume ones (per-op NVM events).
	TraceMask obs.Mask
	// Tracer, if non-nil, receives events instead of a TraceCap ring
	// (Result.Events stays nil; the caller owns collection). The machine
	// calls it from its own goroutine only — see the obs.Tracer contract.
	Tracer obs.Tracer
	// Functional enables content tracking, golden snapshots and crash
	// injection (slower; used by correctness tests and examples).
	Functional bool
	// KeepGolden retains end-of-epoch snapshots (functional mode only);
	// disable for long functional runs that only need final recovery.
	KeepGolden bool
}

// EpochSample is one epoch's slice of a run timeline.
type EpochSample struct {
	Epoch mem.EpochID
	// Cycles is wall-clock spent in this epoch interval.
	Cycles uint64
	// StallCycles is boundary stop-the-world time charged to the epoch.
	StallCycles uint64
	// Writebacks/Random/Sequential are NVM ops issued during the epoch.
	Writebacks, Random, Sequential uint64
	// Commits in the interval (forced commits make this > 1).
	Commits uint64
}

// Result summarizes a completed run.
type Result struct {
	Scheme       string
	Cores        int
	Cycles       uint64
	Instructions uint64
	Commits      uint64
	ForcedCommit uint64
	// BoundaryStallCycles is time lost to stop-the-world commits.
	BoundaryStallCycles uint64
	NVM                 nvm.Stats
	Counters            *stats.Counters
	// LogPeakBytes/LogTotalBytes report PiCL's undo-log footprint.
	LogPeakBytes  uint64
	LogTotalBytes uint64
	// Timeline holds per-epoch samples when Config.Timeline is set.
	Timeline []EpochSample
	// Events holds the recorded trace when Config.TraceCap is set
	// (oldest-first; the ring keeps the last TraceCap events).
	Events []obs.Event
	// EventsDropped counts trace events the ring overwrote.
	EventsDropped uint64
}

// PromText renders the run's aggregate metrics in the Prometheus text
// exposition format (picl_-prefixed, sorted, deterministic bytes):
// headline run counters, per-op NVM traffic, and every scheme counter.
func (r *Result) PromText() string {
	metrics := map[string]uint64{
		"cycles":                r.Cycles,
		"instructions":          r.Instructions,
		"commits":               r.Commits,
		"forced_commits":        r.ForcedCommit,
		"boundary_stall_cycles": r.BoundaryStallCycles,
		"nvm_busy_cycles":       r.NVM.BusyCycles,
		"nvm_row_activations":   r.NVM.RowActivations,
		"nvm_queue_stalls":      r.NVM.StallEvents,
		"nvm_dram_hits":         r.NVM.DRAMHits,
		"undo_log_peak_bytes":   r.LogPeakBytes,
		"undo_log_total_bytes":  r.LogTotalBytes,
		"trace_events_dropped":  r.EventsDropped,
	}
	for op := nvm.Op(0); op < nvm.Op(len(r.NVM.Count)); op++ {
		metrics["nvm_ops_"+op.String()] = r.NVM.Count[op]
		metrics["nvm_bytes_"+op.String()] = r.NVM.Bytes[op]
	}
	if r.Counters != nil {
		for k, v := range r.Counters.Snapshot() {
			metrics["scheme_"+k] = v
		}
	}
	return stats.PromText("picl_", metrics)
}

// NormalizedIOPS returns the scheme's operations in a Fig. 12 category
// divided by base write-back traffic (pass the Ideal run's write-backs).
func (r *Result) NormalizedIOPS(cat nvm.Category, baseWritebacks uint64) float64 {
	if baseWritebacks == 0 {
		return 0
	}
	return float64(r.NVM.Ops(cat)) / float64(baseWritebacks)
}

type coreState struct {
	gen   trace.Generator
	clock uint64
	instr uint64
	seq   uint64
}

// Machine is one configured simulation instance. A Machine is not safe
// for concurrent use, but distinct Machines are fully independent and
// may run on separate goroutines (see the package concurrency contract).
type Machine struct {
	cfg    Config
	scheme checkpoint.Scheme
	hier   *cache.Hierarchy
	ctl    *nvm.Controller
	cores  []*coreState
	// tr is the engine-level tracer (scheduler events); ring is the
	// machine-owned recorder when Config.TraceCap is set.
	tr   obs.Tracer
	ring *obs.Ring

	totalInstr uint64
	stallCyc   uint64
	osSeq      uint64
	// maxClock is the maximum core clock, maintained incrementally at
	// every clock update so Now() is O(1) instead of an O(cores) scan.
	maxClock uint64
	// nextEpoch/nextTick carry the boundary and ACS-tick schedule across
	// RunUntil calls, so a machine paused by a stop predicate (the
	// sharded engine's window barriers, crash injection) resumes without
	// re-firing boundaries it already delivered.
	nextEpoch uint64
	nextTick  uint64
	// osCoreBase offsets this machine's OS save-area line addressing. A
	// sharded lane for core c runs as core 0 of its own machine; the
	// offset keeps its boundary-handler stores on the same per-core lines
	// the legacy engine would use.
	osCoreBase int

	timeline  []EpochSample
	lastEpoch struct {
		at      uint64
		stall   uint64
		commits uint64
		nvm     nvm.Stats
	}

	ref *mem.Image
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("sim: no workloads")
	}
	if cfg.EpochInstr == 0 {
		cfg.EpochInstr = 30_000_000
	}
	if cfg.InstrPerCore == 0 {
		cfg.InstrPerCore = 8 * cfg.EpochInstr
	}
	nvmCfg := nvm.DefaultConfig()
	if cfg.NVM != nil {
		nvmCfg = *cfg.NVM
	}
	if cfg.Functional && nvmCfg.Reordering() {
		return nil, fmt.Errorf("sim: functional durability tracking requires the FCFS single-bank controller (Banks=%d ReadPriority=%v)", nvmCfg.Banks, nvmCfg.ReadPriority)
	}
	ctl := nvm.NewController(nvmCfg)
	scheme, err := MakeScheme(cfg.Scheme, ctl, cfg.Functional, cfg.PiCL, cfg.Baseline)
	if err != nil {
		return nil, err
	}
	hcfg := cache.DefaultHierarchyConfig(len(cfg.Workloads))
	if cfg.Hierarchy != nil {
		hcfg = *cfg.Hierarchy
		hcfg.Cores = len(cfg.Workloads)
	}
	hier := cache.NewHierarchy(hcfg, scheme, scheme)
	scheme.Attach(hier)

	if cfg.OSHandlerLines == 0 {
		cfg.OSHandlerLines = 4
	}
	if cfg.OSHandlerLines < 0 {
		cfg.OSHandlerLines = 0
	}
	m := &Machine{cfg: cfg, scheme: scheme, hier: hier, ctl: ctl}
	m.nextEpoch = cfg.EpochInstr * uint64(len(cfg.Workloads))
	m.nextTick = 2_000_000
	if tr := cfg.Tracer; tr != nil {
		m.tr = tr
	} else if cfg.TraceCap > 0 {
		m.ring = obs.NewRing(cfg.TraceCap)
		m.ring.SetMask(cfg.TraceMask)
		m.tr = m.ring
	}
	if m.tr != nil {
		scheme.SetTracer(m.tr)
		hier.SetTracer(m.tr)
		ctl.SetTracer(m.tr)
	}
	for _, g := range cfg.Workloads {
		m.cores = append(m.cores, &coreState{gen: g})
	}
	if cfg.Timeline {
		// One sample per epoch boundary; preallocating the exact count
		// keeps sampleEpoch allocation-free during the run. The division
		// also sidesteps overflow for enormous budgets (both fields are
		// nonzero by this point); cap the reservation for pathological
		// budget/epoch ratios.
		epochs := cfg.InstrPerCore / cfg.EpochInstr
		if epochs > 1<<20 {
			epochs = 1 << 20
		}
		m.timeline = make([]EpochSample, 0, epochs+2)
	}
	if cfg.Functional {
		m.ref = mem.NewImage()
		if cfg.KeepGolden {
			// Golden end-of-epoch states are marks in the reference
			// image's copy-on-write history: mark 0 is the pristine
			// pre-epoch-1 state, and every commit — including forced
			// early commits triggered inside evictions — seals one more.
			// Snapshot cost is O(lines written in the epoch), not
			// O(footprint).
			m.ref.EnableHistory()
			scheme.SetCommitHook(func() { m.ref.Mark() })
		}
	}
	return m, nil
}

// Scheme exposes the scheme under test.
func (m *Machine) Scheme() checkpoint.Scheme { return m.scheme }

// Hierarchy exposes the cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Controller exposes the NVM controller.
func (m *Machine) Controller() *nvm.Controller { return m.ctl }

// Now returns the maximum core clock (system time). O(1): the maximum is
// maintained at every clock update (step, boundary).
func (m *Machine) Now() uint64 { return m.maxClock }

// step runs one access quantum on the given core.
func (m *Machine) step(c *coreState, coreID int) {
	a := c.gen.Next()
	c.clock += uint64(a.Gap) + 1
	c.instr += uint64(a.Gap) + 1
	m.totalInstr += uint64(a.Gap) + 1
	if a.Write {
		c.seq++
		var payload mem.Word
		if m.cfg.Functional {
			payload = mem.PayloadFor(a.Line, m.scheme.SystemEID(), c.seq)
		}
		if stall := m.hier.Store(c.clock, coreID, a.Line, payload); stall > c.clock {
			c.clock = stall
		}
		if m.cfg.Functional {
			// The reference updates after the store so a forced commit
			// inside the store's eviction path (which flushes the
			// pre-store cache state) snapshots a matching golden image.
			m.ref.Write(a.Line, payload)
		}
	} else {
		_, done := m.hier.Load(c.clock, coreID, a.Line)
		c.clock = done
	}
	if c.clock > m.maxClock {
		m.maxClock = c.clock
	}
}

// boundary delivers the epoch interrupt: all cores synchronize at the
// barrier, the scheme commits, and everyone resumes at the scheme's
// resume time (stop-the-world schemes stall here).
func (m *Machine) boundary() {
	now := m.Now()
	resume := m.scheme.EpochBoundary(now)
	if resume < now {
		resume = now
	}
	if m.tr != nil {
		m.tr.Event(obs.Event{Kind: obs.KindEpochInt, Time: now, Dur: resume - now,
			Epoch: m.scheme.SystemEID(), A: m.totalInstr})
	}
	m.stallCyc += resume - now
	for _, c := range m.cores {
		if c.clock < resume {
			c.clock = resume
		}
	}
	if resume > m.maxClock {
		m.maxClock = resume
	}
	m.scheme.Tick(resume)
	if m.cfg.Timeline {
		m.sampleEpoch(resume)
	}
	// The OS boundary handler saves each core's architectural state with
	// cacheable stores (paper §V-A); these belong to the new epoch.
	for coreID, c := range m.cores {
		for i := 0; i < m.cfg.OSHandlerLines; i++ {
			m.osSeq++
			l := osSaveArea + mem.LineAddr((coreID+m.osCoreBase)*64+i)
			var payload mem.Word
			if m.cfg.Functional {
				payload = mem.PayloadFor(l, m.scheme.SystemEID(), m.osSeq)
			}
			if stall := m.hier.Store(c.clock, coreID, l, payload); stall > c.clock {
				c.clock = stall
			}
			if m.cfg.Functional {
				m.ref.Write(l, payload)
			}
		}
		if c.clock > m.maxClock {
			m.maxClock = c.clock
		}
	}
}

// osSaveArea is the fixed OS-visible region for boundary-handler state,
// disjoint from the harness workload address spaces.
const osSaveArea mem.LineAddr = 1 << 33

// sampleEpoch appends a timeline entry for the interval since the last
// boundary.
func (m *Machine) sampleEpoch(now uint64) {
	cur := m.ctl.Stats()
	prev := &m.lastEpoch
	m.timeline = append(m.timeline, EpochSample{
		Epoch:       m.scheme.SystemEID().Minus(1),
		Cycles:      now - prev.at,
		StallCycles: m.stallCyc - prev.stall,
		Writebacks:  cur.Ops(nvm.CatWriteback) - prev.nvm.Ops(nvm.CatWriteback),
		Random:      cur.Ops(nvm.CatRandom) - prev.nvm.Ops(nvm.CatRandom),
		Sequential:  cur.Ops(nvm.CatSequential) - prev.nvm.Ops(nvm.CatSequential),
		Commits:     m.scheme.Commits() - prev.commits,
	})
	prev.at = now
	prev.stall = m.stallCyc
	prev.commits = m.scheme.Commits()
	prev.nvm = cur
}

// Run executes the configured instruction budget and returns the result.
func (m *Machine) Run() *Result {
	return m.RunUntil(nil)
}

// RunUntil executes until the budget is exhausted or stop (if non-nil)
// returns true; stop is polled between access quanta with the system
// time. Used for crash injection at an instruction-precise point.
// RunUntil is resumable: the boundary and tick schedules live on the
// machine, so a run paused by its stop predicate continues exactly
// where it left off on the next call — the sharded engine drives each
// lane through its epoch windows this way.
//
// Scheduling: the engine always runs the lagging core — the lowest clock
// among cores with remaining budget, ties to the lowest index. Rather
// than rescanning all cores after every access, one selection pass also
// records the runner-up (the best of the remaining cores), and the
// chosen core keeps running while it provably remains the selection:
// stepping it only raises its own clock, so it stays the lagging core
// exactly until its (clock, index) key reaches the runner-up's. The
// schedule is re-derived whenever that bound is crossed, the core
// exhausts its budget, an epoch boundary raises every clock, or
// SchedQuantum accesses have run — so any quantum is cycle-identical to
// the original one-access-at-a-time selection loop.
func (m *Machine) RunUntil(stop func(now uint64, instr uint64) bool) *Result {
	target := m.cfg.InstrPerCore
	epochEvery := m.cfg.EpochInstr * uint64(len(m.cores))
	tickEvery := uint64(2_000_000)
	quantum := m.cfg.SchedQuantum
	if quantum <= 0 {
		quantum = 64
	}

run:
	for {
		// One pass finds the lagging core and the runner-up it must stay
		// ahead of. secondClock/secondID start past any real core, so a
		// sole eligible core runs an unbounded-horizon quantum.
		var c *coreState
		coreID := -1
		secondClock := ^uint64(0)
		secondID := len(m.cores)
		for i, cand := range m.cores {
			if cand.instr >= target {
				continue
			}
			if c == nil || cand.clock < c.clock {
				if c != nil {
					secondClock, secondID = c.clock, coreID
				}
				c, coreID = cand, i
			} else if cand.clock < secondClock {
				secondClock, secondID = cand.clock, i
			}
		}
		if c == nil {
			break
		}
		if m.tr != nil {
			// One event per derived schedule: which core won the lagging
			// selection and at what clock/instruction point.
			m.tr.Event(obs.Event{Kind: obs.KindQuantum, Time: c.clock,
				A: m.totalInstr, B: uint64(coreID)})
		}
		for steps := quantum; ; steps-- {
			m.step(c, coreID)
			resched := false
			if m.totalInstr >= m.nextEpoch {
				m.boundary()
				m.nextEpoch += epochEvery
				resched = true // all clocks may have been raised
			}
			if m.totalInstr >= m.nextTick {
				m.scheme.Tick(m.Now())
				m.nextTick += tickEvery
			}
			if stop != nil && stop(m.Now(), m.totalInstr) {
				break run
			}
			if resched || steps <= 1 || c.instr >= target ||
				c.clock > secondClock ||
				(c.clock == secondClock && coreID > secondID) {
				break
			}
		}
	}
	m.scheme.Tick(m.Now())
	return m.result()
}

func (m *Machine) result() *Result {
	r := &Result{
		Scheme:              m.scheme.Name(),
		Cores:               len(m.cores),
		Cycles:              m.Now(),
		Instructions:        m.totalInstr,
		Commits:             m.scheme.Commits(),
		BoundaryStallCycles: m.stallCyc,
		NVM:                 m.ctl.Stats(),
		Counters:            m.scheme.Counters(),
	}
	r.Timeline = m.timeline
	if m.ring != nil {
		r.Events = m.ring.Events()
		r.EventsDropped = m.ring.Dropped()
	}
	if p, ok := m.scheme.(*core.PiCL); ok {
		r.LogPeakBytes = p.Log().PeakBytes()
		r.LogTotalBytes = p.Log().TotalBytes()
	}
	switch s := m.scheme.(type) {
	case *baselines.Journal:
		r.ForcedCommit = s.ForcedCommits
	case *baselines.Shadow:
		r.ForcedCommit = s.ForcedCommits
	case *baselines.ThyNVM:
		r.ForcedCommit = s.ForcedCommits
	}
	return r
}

// Golden reconstructs the end-of-epoch snapshot for epoch e from the
// reference image's history (functional + KeepGolden runs only). Epoch 0
// is the pristine initial state.
func (m *Machine) Golden(e mem.EpochID) (*mem.Image, bool) {
	if !m.cfg.Functional || !m.cfg.KeepGolden {
		return nil, false
	}
	if int(e) < 0 || int(e) > m.ref.Marks() {
		return nil, false
	}
	return m.ref.At(int(e)), true
}

// Reference returns the running architectural reference image.
func (m *Machine) Reference() *mem.Image { return m.ref }

// CrashAndRecover injects a crash at time t, runs the scheme's recovery,
// and verifies the result against the golden snapshot. It returns the
// recovered epoch, or an error describing the inconsistency.
func (m *Machine) CrashAndRecover(t uint64) (mem.EpochID, error) {
	if !m.cfg.Functional || !m.cfg.KeepGolden {
		return 0, fmt.Errorf("sim: crash injection requires Functional and KeepGolden")
	}
	m.scheme.CrashAt(t)
	img, eid, err := m.scheme.Recover()
	if err != nil {
		return 0, err
	}
	want, ok := m.Golden(eid)
	if !ok {
		return eid, fmt.Errorf("sim: recovered to epoch %d with only %d epochs recorded", eid, m.ref.Marks())
	}
	if !img.Equal(want) {
		return eid, fmt.Errorf("sim: recovery to epoch %d diverges on lines %v", eid, img.Diff(want, 5))
	}
	return eid, nil
}
