package sim

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"testing"
	"time"

	"picl/internal/cache"
	"picl/internal/core"
	"picl/internal/obs"
)

// shardDigest pins everything PromText exports: cycles, instructions,
// commits, stalls, per-op NVM traffic, and every scheme counter.
func shardDigest(r *Result) string {
	return fmt.Sprintf("%x", sha256.Sum256([]byte(r.PromText())))
}

// TestShardInvarianceMatrix is the tentpole determinism gate: across
// schemes and ACS gaps, a 4-core run produces one digest no matter how
// many shard workers execute it.
func TestShardInvarianceMatrix(t *testing.T) {
	schemes := []string{"picl", "frm", "journal", "thynvm"}
	gaps := []int{1, 2, 4}
	for _, scheme := range schemes {
		for _, gap := range gaps {
			if scheme != "picl" && gap != gaps[0] {
				continue // the gap only parameterizes PiCL
			}
			want := ""
			for _, shards := range []int{1, 2, 4, 8} {
				cfg := tinyConfig(scheme, 4, false)
				cfg.PiCL = core.DefaultConfig()
				cfg.PiCL.ACSGap = gap
				cfg.Shards = shards
				res, err := Execute(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := shardDigest(res)
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("%s gap=%d: digest differs at shards=%d:\n%s\nvs shards=1:\n%s",
						scheme, gap, shards, got, want)
				}
				if res.Cores != 4 || res.Instructions < 4*200_000 {
					t.Fatalf("%s shards=%d: merged result incomplete: %+v", scheme, shards, res)
				}
			}
		}
	}
}

// TestShardedSingleCoreBitEquivalent: one lane IS the legacy machine,
// so a single-core sharded run must match the serial engine exactly —
// this is what lets the experiment harness reuse its committed Fig. 9
// golden digests under any -shards value.
func TestShardedSingleCoreBitEquivalent(t *testing.T) {
	for _, scheme := range SchemeNames() {
		legacy, err := Execute(tinyConfig(scheme, 1, false))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 8} {
			cfg := tinyConfig(scheme, 1, false)
			cfg.Shards = shards
			res, err := Execute(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != legacy.Cycles || shardDigest(res) != shardDigest(legacy) {
				t.Fatalf("%s shards=%d: diverges from the legacy engine", scheme, shards)
			}
		}
	}
}

// TestShardedEventStreamDeterministic: the (Time, lane) k-way merge of
// per-lane trace rings is identical at every worker width and globally
// time-ordered.
func TestShardedEventStreamDeterministic(t *testing.T) {
	run := func(shards int) *Result {
		cfg := tinyConfig("picl", 3, false)
		cfg.TraceCap = 1 << 14
		cfg.Shards = shards
		res, err := Execute(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(1), run(2), run(3)
	if len(a.Events) == 0 {
		t.Fatal("sharded run recorded no events")
	}
	if len(a.Events) != len(b.Events) || len(a.Events) != len(c.Events) {
		t.Fatalf("event counts differ: %d vs %d vs %d", len(a.Events), len(b.Events), len(c.Events))
	}
	// The merge must be a pure function of the lane streams: identical
	// at every worker width. (Global time-sortedness is NOT asserted —
	// the legacy engine's own stream has local inversions, e.g. a
	// completion emitted before an earlier-timestamped submit, and the
	// merge preserves intra-lane order exactly.)
	for i := range a.Events {
		if a.Events[i] != b.Events[i] || a.Events[i] != c.Events[i] {
			t.Fatalf("event %d differs between shard widths: %+v vs %+v vs %+v",
				i, a.Events[i], b.Events[i], c.Events[i])
		}
	}
}

// TestShardedContention exercises the widest pool against the most
// lanes (all windows in flight at once); under `make race` this is the
// data-race gate for the sharded engine.
func TestShardedContention(t *testing.T) {
	cfg := tinyConfig("picl", 8, false)
	cfg.TraceCap = 1 << 10
	cfg.Shards = 8
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 8 || res.Instructions < 8*200_000 {
		t.Fatalf("contended run incomplete: %+v", res)
	}
}

// TestShardedRejectsUnpartitionableFeatures: state that cannot be
// partitioned by address must be refused, not silently degraded.
func TestShardedRejectsUnpartitionableFeatures(t *testing.T) {
	cfg := tinyConfig("picl", 2, true) // functional
	cfg.Shards = 2
	if _, err := NewSharded(cfg); err == nil {
		t.Fatal("functional mode accepted by the sharded engine")
	}
	cfg = tinyConfig("picl", 2, false)
	cfg.Shards = 2
	cfg.Tracer = obs.NewRing(16)
	if _, err := NewSharded(cfg); err == nil {
		t.Fatal("external tracer accepted by the sharded engine")
	}
	cfg = tinyConfig("picl", 2, false)
	cfg.Shards = 2
	cfg.Timeline = true
	if _, err := NewSharded(cfg); err == nil {
		t.Fatal("multicore timeline accepted by the sharded engine")
	}
	cfg = tinyConfig("picl", 2, false)
	cfg.Shards = 2
	cfg.Hierarchy.LLC = cache.Config{Name: "llc", Size: 48 << 10, Ways: 8, Latency: 30}
	if _, err := NewSharded(cfg); err == nil {
		t.Fatal("non-power-of-two LLC partition accepted")
	}
}

// TestShardedSpeedup is the parallel-speedup timing gate: with enough
// host cores, 4 shard workers must beat 1 by a wide margin on a 4-lane
// run. Timing gates are skipped on small hosts (the determinism gates
// above always apply); the threshold is deliberately loose so shared
// CI hosts do not flake.
func TestShardedSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("parallel-speedup timing gate needs >= 4 CPUs (have %d); determinism gates still ran", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing gate skipped in short mode")
	}
	wall := func(shards int) time.Duration {
		cfg := tinyConfig("picl", 4, false)
		cfg.InstrPerCore = 800_000
		cfg.Shards = shards
		t0 := time.Now()
		if _, err := Execute(cfg); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	wall(4) // warm caches and page in both paths
	serial, parallel := wall(1), wall(4)
	if speedup := serial.Seconds() / parallel.Seconds(); speedup < 1.5 {
		t.Fatalf("4-shard speedup %.2fx < 1.5x (serial %v, parallel %v)", speedup, serial, parallel)
	}
}
