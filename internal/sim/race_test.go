package sim

import (
	"sync"
	"testing"
)

// TestIndependentMachinesRace enforces the package concurrency contract
// under -race: distinct Machines — every scheme, including functional
// crash injection — run concurrently without touching shared state, and
// each produces the identical result it produces serially.
func TestIndependentMachinesRace(t *testing.T) {
	// Serial reference results, one per scheme.
	want := map[string]*Result{}
	for _, scheme := range SchemeNames() {
		m, err := New(tinyConfig(scheme, 1, false))
		if err != nil {
			t.Fatal(err)
		}
		want[scheme] = m.Run()
	}

	var wg sync.WaitGroup
	for _, scheme := range SchemeNames() {
		for copyN := 0; copyN < 2; copyN++ {
			wg.Add(1)
			go func(scheme string) {
				defer wg.Done()
				m, err := New(tinyConfig(scheme, 1, false))
				if err != nil {
					t.Error(err)
					return
				}
				r := m.Run()
				w := want[scheme]
				if r.Cycles != w.Cycles || r.Commits != w.Commits ||
					r.NVM.Count != w.NVM.Count {
					t.Errorf("%s: concurrent run diverged from serial (cycles %d vs %d, commits %d vs %d)",
						scheme, r.Cycles, w.Cycles, r.Commits, w.Commits)
				}
			}(scheme)
		}
	}
	wg.Wait()
}

// TestConcurrentFunctionalCrashRecovery runs two functional machines with
// crash injection on separate goroutines — the golden-image machinery is
// per-machine too.
func TestConcurrentFunctionalCrashRecovery(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := New(tinyConfig("picl", 1, true))
			if err != nil {
				t.Error(err)
				return
			}
			m.RunUntil(func(_ uint64, instr uint64) bool { return instr >= 150_000 })
			if _, err := m.CrashAndRecover(m.Now()); err != nil {
				t.Errorf("machine %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}
